//! Std-only zlib (RFC 1950) / DEFLATE (RFC 1951) decompression.
//!
//! MAT v7 files wrap every top-level variable in a `miCOMPRESSED` element
//! whose payload is a zlib stream, so the reader needs an inflater but must
//! stay dependency-free. [`ZlibDecoder`] implements [`Read`]: it pulls
//! compressed bytes from any inner reader through a fixed-size input buffer,
//! maintains the 32 KiB LZ77 back-reference window, and yields decompressed
//! bytes incrementally — peak memory is a constant regardless of stream
//! size, which is what keeps the feature-matrix streaming path in
//! `O(chunk_rows x feature_dim)`.
//!
//! All three DEFLATE block types are handled (stored, fixed Huffman, dynamic
//! Huffman), and the Adler-32 checksum in the zlib trailer is verified when
//! the final block ends: the `read` call that consumes the end of the stream
//! fails with [`InflateError::ChecksumMismatch`] if the payload was
//! corrupted. Every malformed-stream condition is a typed [`InflateError`]
//! (surfaced through `std::io::Error` with kind `InvalidData`), never a
//! panic.

use std::io::{self, Read};

/// LZ77 window size fixed by the DEFLATE spec.
const WINDOW_SIZE: usize = 32 * 1024;
/// Compressed-input buffer size (constant regardless of stream length).
const INPUT_BUF: usize = 8 * 1024;
/// Largest Adler-32 batch that cannot overflow `u32` accumulators.
const ADLER_NMAX: usize = 5552;
/// Adler-32 modulus.
const ADLER_MOD: u32 = 65521;

/// A malformed or corrupted zlib/DEFLATE stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InflateError {
    /// The 2-byte zlib header is not a valid CMF/FLG pair.
    BadZlibHeader {
        /// Compression-method/flags byte.
        cmf: u8,
        /// Check-bits/flags byte.
        flg: u8,
    },
    /// The stream requires a preset dictionary (FDICT), which MAT files
    /// never use.
    PresetDictionary,
    /// A DEFLATE block used the reserved block type `11`.
    BadBlockType,
    /// A stored block's one's-complement length check failed.
    StoredLengthMismatch {
        /// LEN field.
        len: u16,
        /// NLEN field (must be `!LEN`).
        nlen: u16,
    },
    /// A Huffman code description assigns more codes than its bit lengths
    /// can hold (over-subscribed), or is incomplete where completeness is
    /// required.
    BadHuffmanCode {
        /// Which code table was malformed.
        context: &'static str,
        /// What was wrong with it.
        message: &'static str,
    },
    /// A decoded bit pattern matches no symbol of the current code.
    InvalidSymbol {
        /// Which code table the bits were decoded against.
        context: &'static str,
    },
    /// A dynamic block's code-length alphabet repeated "previous length"
    /// before any length was emitted, or a repeat ran past the table.
    BadLengthRepeat,
    /// A match distance reaches further back than the bytes produced so far.
    DistanceTooFar {
        /// Requested back-reference distance.
        dist: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The Adler-32 checksum in the zlib trailer disagrees with the
    /// decompressed payload.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        expected: u32,
        /// Checksum of the bytes actually decompressed.
        actual: u32,
    },
    /// The compressed stream ended before the final block (or trailer)
    /// completed.
    TruncatedStream,
}

impl std::fmt::Display for InflateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InflateError::BadZlibHeader { cmf, flg } => {
                write!(f, "bad zlib header bytes 0x{cmf:02x} 0x{flg:02x}")
            }
            InflateError::PresetDictionary => {
                write!(f, "zlib stream requires a preset dictionary (unsupported)")
            }
            InflateError::BadBlockType => write!(f, "reserved DEFLATE block type 11"),
            InflateError::StoredLengthMismatch { len, nlen } => write!(
                f,
                "stored block length check failed: LEN={len:#06x} NLEN={nlen:#06x}"
            ),
            InflateError::BadHuffmanCode { context, message } => {
                write!(f, "bad {context} Huffman code: {message}")
            }
            InflateError::InvalidSymbol { context } => {
                write!(f, "bit pattern matches no {context} symbol")
            }
            InflateError::BadLengthRepeat => {
                write!(f, "invalid code-length repeat in dynamic block header")
            }
            InflateError::DistanceTooFar { dist, have } => {
                write!(f, "match distance {dist} exceeds {have} bytes of history")
            }
            InflateError::ChecksumMismatch { expected, actual } => write!(
                f,
                "Adler-32 mismatch: trailer says {expected:#010x}, payload hashes to {actual:#010x}"
            ),
            InflateError::TruncatedStream => write!(f, "compressed stream ended unexpectedly"),
        }
    }
}

impl std::error::Error for InflateError {}

impl InflateError {
    fn into_io(self) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, self)
    }

    /// Recover the typed inflate error from an `io::Error` produced by
    /// [`ZlibDecoder::read`], if that is what it carries.
    pub fn from_io(err: &io::Error) -> Option<&InflateError> {
        err.get_ref().and_then(|e| e.downcast_ref())
    }
}

/// Running Adler-32 (RFC 1950 §2.2) with deferred modulo.
#[derive(Clone, Copy, Debug)]
struct Adler32 {
    a: u32,
    b: u32,
    pending: usize,
}

impl Adler32 {
    fn new() -> Self {
        Adler32 {
            a: 1,
            b: 0,
            pending: 0,
        }
    }

    #[inline]
    fn push(&mut self, byte: u8) {
        self.a += byte as u32;
        self.b += self.a;
        self.pending += 1;
        if self.pending == ADLER_NMAX {
            self.a %= ADLER_MOD;
            self.b %= ADLER_MOD;
            self.pending = 0;
        }
    }

    fn value(&self) -> u32 {
        ((self.b % ADLER_MOD) << 16) | (self.a % ADLER_MOD)
    }
}

/// Adler-32 of a whole buffer — shared with the fixture writer so written
/// trailers and verified trailers cannot disagree on the algorithm.
pub fn adler32(bytes: &[u8]) -> u32 {
    let mut a = Adler32::new();
    for &b in bytes {
        a.push(b);
    }
    a.value()
}

/// LSB-first bit reader over an inner [`Read`], with a fixed-size input
/// buffer (byte-at-a-time syscalls would make multi-GB streams crawl).
struct BitReader<R> {
    inner: R,
    buf: Box<[u8; INPUT_BUF]>,
    pos: usize,
    len: usize,
    bitbuf: u64,
    bitcount: u32,
    inner_eof: bool,
}

impl<R: Read> BitReader<R> {
    fn new(inner: R) -> Self {
        BitReader {
            inner,
            buf: Box::new([0; INPUT_BUF]),
            pos: 0,
            len: 0,
            bitbuf: 0,
            bitcount: 0,
            inner_eof: false,
        }
    }

    /// Next raw input byte, refilling the buffer as needed.
    fn next_byte(&mut self) -> io::Result<Option<u8>> {
        if self.pos == self.len {
            if self.inner_eof {
                return Ok(None);
            }
            self.len = self.inner.read(&mut self.buf[..])?;
            self.pos = 0;
            if self.len == 0 {
                self.inner_eof = true;
                return Ok(None);
            }
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(Some(b))
    }

    /// Ensure at least `n` bits are buffered, erroring on EOF.
    fn need(&mut self, n: u32) -> io::Result<()> {
        while self.bitcount < n {
            match self.next_byte()? {
                Some(b) => {
                    self.bitbuf |= (b as u64) << self.bitcount;
                    self.bitcount += 8;
                }
                None => return Err(InflateError::TruncatedStream.into_io()),
            }
        }
        Ok(())
    }

    /// Buffer up to `n` bits, stopping quietly at EOF (the Huffman decoder
    /// pads with zeros and checks the matched code length afterwards).
    fn fill_at_most(&mut self, n: u32) -> io::Result<()> {
        while self.bitcount < n {
            match self.next_byte()? {
                Some(b) => {
                    self.bitbuf |= (b as u64) << self.bitcount;
                    self.bitcount += 8;
                }
                None => break,
            }
        }
        Ok(())
    }

    #[inline]
    fn take(&mut self, n: u32) -> u64 {
        debug_assert!(n <= self.bitcount);
        let v = self.bitbuf & ((1u64 << n) - 1);
        self.bitbuf >>= n;
        self.bitcount -= n;
        v
    }

    fn bits(&mut self, n: u32) -> io::Result<u64> {
        self.need(n)?;
        Ok(self.take(n))
    }

    /// Discard bits up to the next byte boundary.
    fn align_byte(&mut self) {
        let drop = self.bitcount % 8;
        self.bitbuf >>= drop;
        self.bitcount -= drop;
    }

    /// Read whole bytes (caller must be byte-aligned), draining buffered
    /// bits first — used for stored blocks and the Adler-32 trailer.
    fn read_bytes(&mut self, out: &mut [u8]) -> io::Result<()> {
        debug_assert_eq!(self.bitcount % 8, 0);
        for slot in out.iter_mut() {
            if self.bitcount >= 8 {
                *slot = (self.bitbuf & 0xFF) as u8;
                self.bitbuf >>= 8;
                self.bitcount -= 8;
            } else {
                match self.next_byte()? {
                    Some(b) => *slot = b,
                    None => return Err(InflateError::TruncatedStream.into_io()),
                }
            }
        }
        Ok(())
    }

    fn decode(&mut self, table: &Huffman) -> io::Result<u16> {
        self.fill_at_most(table.max_len)?;
        if self.bitcount == 0 {
            return Err(InflateError::TruncatedStream.into_io());
        }
        let idx = (self.bitbuf & ((1u64 << table.max_len) - 1)) as usize;
        let entry = table.lookup[idx];
        let len = (entry & 0xF) as u32;
        if entry == 0 {
            return Err(InflateError::InvalidSymbol {
                context: table.context,
            }
            .into_io());
        }
        if len > self.bitcount {
            return Err(InflateError::TruncatedStream.into_io());
        }
        self.take(len);
        Ok(entry >> 4)
    }
}

/// A canonical Huffman code as a flat `peek max_len bits -> (symbol, len)`
/// table. Entries pack `(symbol << 4) | code_len`; 0 marks bit patterns that
/// match no symbol (possible only for permitted-incomplete codes).
struct Huffman {
    lookup: Vec<u16>,
    max_len: u32,
    context: &'static str,
}

impl Huffman {
    /// Build from per-symbol code lengths (0 = unused). Rejects
    /// over-subscribed codes always and incomplete codes unless
    /// `allow_incomplete` (the DEFLATE distance code may legally be
    /// incomplete when few distances occur). Returns `None` when no symbol
    /// has a code at all.
    fn build(
        lengths: &[u8],
        context: &'static str,
        allow_incomplete: bool,
    ) -> Result<Option<Huffman>, InflateError> {
        let mut count = [0u32; 16];
        let mut max_len = 0u32;
        for &l in lengths {
            debug_assert!(l <= 15);
            if l > 0 {
                count[l as usize] += 1;
                max_len = max_len.max(l as u32);
            }
        }
        if max_len == 0 {
            return Ok(None);
        }
        // Kraft check: over-subscription is always fatal; a deficit is
        // tolerated only where the spec allows it.
        let mut left = 1i64;
        for &n in &count[1..=15] {
            left <<= 1;
            left -= n as i64;
            if left < 0 {
                return Err(InflateError::BadHuffmanCode {
                    context,
                    message: "over-subscribed bit lengths",
                });
            }
        }
        if left > 0 && !allow_incomplete {
            return Err(InflateError::BadHuffmanCode {
                context,
                message: "incomplete bit lengths",
            });
        }
        // First canonical code of each length.
        let mut next_code = [0u32; 16];
        let mut code = 0u32;
        for l in 1..=15usize {
            code = (code + count[l - 1]) << 1;
            next_code[l] = code;
        }
        let mut lookup = vec![0u16; 1 << max_len];
        for (sym, &l) in lengths.iter().enumerate() {
            if l == 0 {
                continue;
            }
            let l = l as u32;
            let code = next_code[l as usize];
            next_code[l as usize] += 1;
            // Codes are read LSB-first from the stream but assigned
            // MSB-first; reverse the bits for table indexing.
            let mut rev = 0u32;
            for bit in 0..l {
                rev |= ((code >> bit) & 1) << (l - 1 - bit);
            }
            let entry = ((sym as u16) << 4) | l as u16;
            let step = 1usize << l;
            let mut idx = rev as usize;
            while idx < lookup.len() {
                lookup[idx] = entry;
                idx += step;
            }
        }
        Ok(Some(Huffman {
            lookup,
            max_len,
            context,
        }))
    }
}

/// Length-symbol (257..=285) base values and extra-bit counts.
const LEN_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LEN_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
/// Distance-symbol (0..=29) base values and extra-bit counts.
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];
/// Order in which code-length-code lengths appear in a dynamic header.
const CL_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// Where the decoder is within the stream between `read` calls.
enum State {
    /// zlib header not yet read.
    Start,
    /// At a DEFLATE block boundary.
    BlockHead,
    /// Inside a stored block with this many bytes left.
    Stored(usize),
    /// Decoding symbols of a Huffman block (tables live on the decoder).
    InBlock,
    /// Mid-match: copying `remaining` bytes from `dist` back.
    Copy { dist: usize, remaining: usize },
    /// Final block done; trailer not yet verified.
    CheckAdler,
    /// Stream fully decoded and verified.
    Done,
}

/// Streaming zlib decompressor implementing [`Read`].
///
/// Memory use is constant: a 32 KiB window, an 8 KiB input buffer, and the
/// per-block Huffman tables. The Adler-32 trailer is verified by the `read`
/// call that consumes the end of the stream; after success, reads return
/// `Ok(0)`.
pub struct ZlibDecoder<R> {
    bits: BitReader<R>,
    window: Box<[u8; WINDOW_SIZE]>,
    wpos: usize,
    total_out: u64,
    adler: Adler32,
    state: State,
    final_block: bool,
    lit: Option<Huffman>,
    dist: Option<Huffman>,
}

impl<R: Read> ZlibDecoder<R> {
    /// Wrap a reader positioned at the first byte of a zlib stream.
    pub fn new(inner: R) -> Self {
        ZlibDecoder {
            bits: BitReader::new(inner),
            window: Box::new([0; WINDOW_SIZE]),
            wpos: 0,
            total_out: 0,
            adler: Adler32::new(),
            state: State::Start,
            final_block: false,
            lit: None,
            dist: None,
        }
    }

    /// Total decompressed bytes produced so far.
    pub fn total_out(&self) -> u64 {
        self.total_out
    }

    /// True once the final block and trailer have been consumed and
    /// verified.
    pub fn is_finished(&self) -> bool {
        matches!(self.state, State::Done)
    }

    #[inline]
    fn push(&mut self, b: u8) {
        self.window[self.wpos] = b;
        self.wpos = (self.wpos + 1) & (WINDOW_SIZE - 1);
        self.total_out += 1;
        self.adler.push(b);
    }

    fn read_header(&mut self) -> io::Result<()> {
        let mut hdr = [0u8; 2];
        self.bits.read_bytes(&mut hdr)?;
        let (cmf, flg) = (hdr[0], hdr[1]);
        let method = cmf & 0x0F;
        let cinfo = cmf >> 4;
        if method != 8 || cinfo > 7 || !(cmf as u16 * 256 + flg as u16).is_multiple_of(31) {
            return Err(InflateError::BadZlibHeader { cmf, flg }.into_io());
        }
        if flg & 0x20 != 0 {
            return Err(InflateError::PresetDictionary.into_io());
        }
        Ok(())
    }

    fn read_block_header(&mut self) -> io::Result<()> {
        self.final_block = self.bits.bits(1)? == 1;
        match self.bits.bits(2)? {
            0 => {
                self.bits.align_byte();
                let mut lens = [0u8; 4];
                self.bits.read_bytes(&mut lens)?;
                let len = u16::from_le_bytes([lens[0], lens[1]]);
                let nlen = u16::from_le_bytes([lens[2], lens[3]]);
                if len != !nlen {
                    return Err(InflateError::StoredLengthMismatch { len, nlen }.into_io());
                }
                self.state = State::Stored(len as usize);
            }
            1 => {
                let mut lit_lens = [0u8; 288];
                for (i, l) in lit_lens.iter_mut().enumerate() {
                    *l = match i {
                        0..=143 => 8,
                        144..=255 => 9,
                        256..=279 => 7,
                        _ => 8,
                    };
                }
                self.lit = Huffman::build(&lit_lens, "fixed literal/length", false)
                    .map_err(InflateError::into_io)?;
                self.dist = Huffman::build(&[5u8; 30], "fixed distance", true)
                    .map_err(InflateError::into_io)?;
                self.state = State::InBlock;
            }
            2 => {
                self.read_dynamic_tables()?;
                self.state = State::InBlock;
            }
            _ => return Err(InflateError::BadBlockType.into_io()),
        }
        Ok(())
    }

    fn read_dynamic_tables(&mut self) -> io::Result<()> {
        let hlit = self.bits.bits(5)? as usize + 257;
        let hdist = self.bits.bits(5)? as usize + 1;
        let hclen = self.bits.bits(4)? as usize + 4;
        if hlit > 286 || hdist > 30 {
            return Err(InflateError::BadHuffmanCode {
                context: "dynamic header",
                message: "too many literal/length or distance codes",
            }
            .into_io());
        }
        let mut cl_lens = [0u8; 19];
        for &slot in CL_ORDER.iter().take(hclen) {
            cl_lens[slot] = self.bits.bits(3)? as u8;
        }
        let cl = Huffman::build(&cl_lens, "code-length", false)
            .map_err(InflateError::into_io)?
            .ok_or_else(|| {
                InflateError::BadHuffmanCode {
                    context: "code-length",
                    message: "no code lengths at all",
                }
                .into_io()
            })?;
        let total = hlit + hdist;
        let mut lens = [0u8; 286 + 30];
        let mut i = 0usize;
        while i < total {
            let sym = self.bits.decode(&cl)?;
            match sym {
                0..=15 => {
                    lens[i] = sym as u8;
                    i += 1;
                }
                16 => {
                    if i == 0 {
                        return Err(InflateError::BadLengthRepeat.into_io());
                    }
                    let rep = 3 + self.bits.bits(2)? as usize;
                    if i + rep > total {
                        return Err(InflateError::BadLengthRepeat.into_io());
                    }
                    let prev = lens[i - 1];
                    lens[i..i + rep].fill(prev);
                    i += rep;
                }
                17 | 18 => {
                    let rep = if sym == 17 {
                        3 + self.bits.bits(3)? as usize
                    } else {
                        11 + self.bits.bits(7)? as usize
                    };
                    if i + rep > total {
                        return Err(InflateError::BadLengthRepeat.into_io());
                    }
                    // lens is zero-initialized; just skip.
                    i += rep;
                }
                _ => unreachable!("code-length alphabet has 19 symbols"),
            }
        }
        if lens[256] == 0 {
            return Err(InflateError::BadHuffmanCode {
                context: "dynamic literal/length",
                message: "missing end-of-block code",
            }
            .into_io());
        }
        self.lit = Huffman::build(&lens[..hlit], "dynamic literal/length", false)
            .map_err(InflateError::into_io)?;
        self.dist = Huffman::build(&lens[hlit..total], "dynamic distance", true)
            .map_err(InflateError::into_io)?;
        Ok(())
    }

    fn end_of_block_state(&self) -> State {
        if self.final_block {
            State::CheckAdler
        } else {
            State::BlockHead
        }
    }

    fn verify_adler(&mut self) -> io::Result<()> {
        self.bits.align_byte();
        let mut trailer = [0u8; 4];
        self.bits.read_bytes(&mut trailer)?;
        let expected = u32::from_be_bytes(trailer);
        let actual = self.adler.value();
        if expected != actual {
            return Err(InflateError::ChecksumMismatch { expected, actual }.into_io());
        }
        Ok(())
    }
}

impl<R: Read> Read for ZlibDecoder<R> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let mut n = 0;
        loop {
            match self.state {
                State::Start => {
                    self.read_header()?;
                    self.state = State::BlockHead;
                }
                State::BlockHead => self.read_block_header()?,
                State::Stored(remaining) => {
                    if n == out.len() {
                        break;
                    }
                    let take = remaining.min(out.len() - n);
                    self.bits.read_bytes(&mut out[n..n + take])?;
                    for &b in out[n..n + take].iter() {
                        self.push(b);
                    }
                    n += take;
                    if take == remaining {
                        self.state = self.end_of_block_state();
                    } else {
                        self.state = State::Stored(remaining - take);
                    }
                }
                State::InBlock => {
                    if n == out.len() {
                        break;
                    }
                    let lit = self.lit.as_ref().expect("tables set at block header");
                    let sym = self.bits.decode(lit)?;
                    if sym < 256 {
                        out[n] = sym as u8;
                        self.push(sym as u8);
                        n += 1;
                    } else if sym == 256 {
                        self.state = self.end_of_block_state();
                    } else {
                        let li = (sym - 257) as usize;
                        if li >= LEN_BASE.len() {
                            return Err(InflateError::InvalidSymbol {
                                context: "literal/length",
                            }
                            .into_io());
                        }
                        let len =
                            LEN_BASE[li] as usize + self.bits.bits(LEN_EXTRA[li] as u32)? as usize;
                        let dist_table = self.dist.as_ref().ok_or_else(|| {
                            InflateError::InvalidSymbol {
                                context: "distance (block defines none)",
                            }
                            .into_io()
                        })?;
                        let dsym = self.bits.decode(dist_table)? as usize;
                        if dsym >= DIST_BASE.len() {
                            return Err(InflateError::InvalidSymbol {
                                context: "distance",
                            }
                            .into_io());
                        }
                        let dist = DIST_BASE[dsym] as usize
                            + self.bits.bits(DIST_EXTRA[dsym] as u32)? as usize;
                        let have = self.total_out.min(WINDOW_SIZE as u64) as usize;
                        if dist > have {
                            return Err(InflateError::DistanceTooFar { dist, have }.into_io());
                        }
                        self.state = State::Copy {
                            dist,
                            remaining: len,
                        };
                    }
                }
                State::Copy { dist, remaining } => {
                    let mut left = remaining;
                    while left > 0 && n < out.len() {
                        let b = self.window[(self.wpos + WINDOW_SIZE - dist) & (WINDOW_SIZE - 1)];
                        out[n] = b;
                        self.push(b);
                        n += 1;
                        left -= 1;
                    }
                    if left == 0 {
                        self.state = State::InBlock;
                    } else {
                        self.state = State::Copy {
                            dist,
                            remaining: left,
                        };
                        break; // out is full
                    }
                }
                State::CheckAdler => {
                    self.verify_adler()?;
                    self.state = State::Done;
                }
                State::Done => break,
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inflate_all(bytes: &[u8]) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        ZlibDecoder::new(bytes).read_to_end(&mut out)?;
        Ok(out)
    }

    fn typed(err: io::Error) -> InflateError {
        InflateError::from_io(&err)
            .unwrap_or_else(|| panic!("not an InflateError: {err}"))
            .clone()
    }

    // Reference streams produced by zlib itself (CPython's bindings), so the
    // decoder is checked against the real implementation rather than only
    // against this crate's own writer.

    /// `zlib.compressobj(6, strategy=Z_FIXED)` — fixed Huffman with matches.
    const FIXED_RAW: &[u8] = b"hello hello hello hello, zsl!";
    const FIXED_ZLIB: &[u8] = &[
        120, 1, 203, 72, 205, 201, 201, 87, 200, 64, 39, 117, 20, 170, 138, 115, 20, 1, 162, 11,
        10, 119,
    ];

    /// `zlib.compressobj(9)` with a `Z_FULL_FLUSH` mid-stream — two dynamic
    /// blocks plus an empty stored flush block, matches crossing the flush.
    fn dynamic_raw() -> Vec<u8> {
        let mut v = Vec::new();
        for _ in 0..4 {
            v.extend_from_slice(b"the quick brown fox jumps over the lazy dog. ");
        }
        for _ in 0..3 {
            v.extend_from_slice(b"the quick brown fox jumps over the lazy dog? ");
        }
        for _ in 0..5 {
            v.extend_from_slice(b"abcdefghij");
        }
        v
    }
    const DYNAMIC_ZLIB: &[u8] = &[
        120, 218, 42, 201, 72, 85, 40, 44, 205, 76, 206, 86, 72, 42, 202, 47, 207, 83, 72, 203,
        175, 80, 200, 42, 205, 45, 40, 86, 200, 47, 75, 45, 82, 40, 1, 74, 231, 36, 86, 85, 42,
        164, 228, 167, 235, 129, 121, 131, 64, 49, 0, 0, 0, 255, 255, 43, 201, 72, 85, 40, 44, 205,
        76, 206, 86, 72, 42, 202, 47, 207, 83, 72, 203, 175, 80, 200, 42, 205, 45, 40, 86, 200, 47,
        75, 45, 82, 40, 1, 74, 231, 36, 86, 85, 42, 164, 228, 167, 219, 131, 121, 180, 81, 156,
        152, 148, 156, 146, 154, 150, 158, 145, 153, 69, 44, 11, 0, 243, 99, 133, 248,
    ];

    /// `zlib.compressobj(0)` — a stored block.
    const STORED_ZLIB: &[u8] = &[
        120, 1, 1, 47, 0, 208, 255, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17,
        18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34, 35, 36, 37, 38, 39, 40,
        41, 42, 43, 44, 45, 46, 67, 191, 4, 58,
    ];

    #[test]
    fn inflates_real_zlib_fixed_huffman_stream() {
        assert_eq!(inflate_all(FIXED_ZLIB).unwrap(), FIXED_RAW);
    }

    #[test]
    fn inflates_real_zlib_dynamic_huffman_stream_with_flush_boundary() {
        assert_eq!(inflate_all(DYNAMIC_ZLIB).unwrap(), dynamic_raw());
    }

    #[test]
    fn inflates_real_zlib_stored_stream() {
        let raw: Vec<u8> = (0u8..47).collect();
        assert_eq!(inflate_all(STORED_ZLIB).unwrap(), raw);
    }

    #[test]
    fn tiny_output_buffers_reproduce_the_same_bytes() {
        // Exercise state preservation across read() calls, including matches
        // split mid-copy.
        let mut dec = ZlibDecoder::new(DYNAMIC_ZLIB);
        let mut out = Vec::new();
        let mut one = [0u8; 1];
        loop {
            match dec.read(&mut one).unwrap() {
                0 => break,
                _ => out.push(one[0]),
            }
        }
        assert_eq!(out, dynamic_raw());
        assert!(dec.is_finished());
    }

    #[test]
    fn corrupt_adler_trailer_is_a_checksum_mismatch() {
        let mut bytes = FIXED_ZLIB.to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let err = inflate_all(&bytes).unwrap_err();
        assert!(matches!(typed(err), InflateError::ChecksumMismatch { .. }));
    }

    #[test]
    fn corrupt_payload_is_a_checksum_mismatch_or_symbol_error() {
        // Flipping a payload bit either derails the block structure (typed
        // length/symbol error) or survives to the trailer check; both are
        // typed failures, never a panic or silent success. Byte 3 onward:
        // bytes 0-1 are the zlib header (covered elsewhere) and the upper
        // bits of the block-header byte 2 are don't-care padding for stored
        // blocks, so a flip there legitimately changes nothing.
        for i in 3..STORED_ZLIB.len() - 4 {
            let mut bytes = STORED_ZLIB.to_vec();
            bytes[i] ^= 0x10;
            if let Err(err) = inflate_all(&bytes) {
                let _ = typed(err); // must downcast to a typed InflateError
            } else {
                panic!("corruption at byte {i} slipped through");
            }
        }
    }

    #[test]
    fn truncated_stream_is_typed() {
        for cut in 1..FIXED_ZLIB.len() {
            match inflate_all(&FIXED_ZLIB[..cut]) {
                Err(err) => assert!(
                    matches!(typed(err), InflateError::TruncatedStream),
                    "cut at {cut}"
                ),
                Ok(_) => panic!("truncation at {cut} slipped through"),
            }
        }
    }

    #[test]
    fn bad_zlib_header_and_preset_dict_are_typed() {
        let err = inflate_all(&[0x79, 0x01, 0, 0]).unwrap_err();
        assert!(matches!(typed(err), InflateError::BadZlibHeader { .. }));
        // CMF 0x78 with FDICT set and a valid header checksum
        // ((0x78 * 256 + 0x20) % 31 == 0, bit 0x20 set).
        let err = inflate_all(&[0x78, 0x20, 0, 0, 0, 0]).unwrap_err();
        assert!(matches!(typed(err), InflateError::PresetDictionary));
    }

    #[test]
    fn reserved_block_type_is_typed() {
        // Valid header then BFINAL=1 BTYPE=11 -> 0b111.
        let err = inflate_all(&[0x78, 0x01, 0x07]).unwrap_err();
        assert!(matches!(typed(err), InflateError::BadBlockType));
    }

    #[test]
    fn stored_length_complement_mismatch_is_typed() {
        // BFINAL=1 BTYPE=00, LEN=1, NLEN=0 (not the complement).
        let err = inflate_all(&[0x78, 0x01, 0x01, 0x01, 0x00, 0x00, 0x00, 0xAA]).unwrap_err();
        assert!(matches!(
            typed(err),
            InflateError::StoredLengthMismatch { .. }
        ));
    }

    #[test]
    fn distance_before_start_of_stream_is_typed() {
        // Fixed-Huffman block whose first symbol is a match: nothing has
        // been output yet, so any distance is too far.
        // BFINAL=1 BTYPE=01, then symbol 257 (len 3) code 0000001, dist 0.
        let mut bits = BitSink::new();
        bits.emit(1, 1); // BFINAL
        bits.emit(0b01, 2); // BTYPE=01
        bits.emit_rev(0b0000001, 7); // length symbol 257
        bits.emit_rev(0b00000, 5); // distance symbol 0 (dist=1)
        let mut stream = vec![0x78, 0x01];
        stream.extend_from_slice(&bits.finish());
        stream.extend_from_slice(&[0, 0, 0, 0]);
        let err = inflate_all(&stream).unwrap_err();
        assert!(matches!(typed(err), InflateError::DistanceTooFar { .. }));
    }

    /// Minimal LSB-first bit sink for handcrafting streams in tests.
    struct BitSink {
        bytes: Vec<u8>,
        cur: u8,
        used: u32,
    }

    impl BitSink {
        fn new() -> Self {
            BitSink {
                bytes: Vec::new(),
                cur: 0,
                used: 0,
            }
        }
        fn push_bit(&mut self, b: u32) {
            self.cur |= (b as u8 & 1) << self.used;
            self.used += 1;
            if self.used == 8 {
                self.bytes.push(self.cur);
                self.cur = 0;
                self.used = 0;
            }
        }
        /// Emit `len` bits LSB-first (header fields).
        fn emit(&mut self, v: u32, len: u32) {
            for i in 0..len {
                self.push_bit(v >> i);
            }
        }
        /// Emit a Huffman code MSB-first (code bits).
        fn emit_rev(&mut self, v: u32, len: u32) {
            for i in (0..len).rev() {
                self.push_bit(v >> i);
            }
        }
        fn finish(mut self) -> Vec<u8> {
            if self.used > 0 {
                self.bytes.push(self.cur);
            }
            self.bytes
        }
    }

    #[test]
    fn adler32_matches_reference_values() {
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"Wikipedia"), 0x11E60398);
        // Exercise the deferred-modulo batching boundary.
        let big = vec![0xABu8; ADLER_NMAX * 3 + 17];
        let mut slow_a: u64 = 1;
        let mut slow_b: u64 = 0;
        for &b in &big {
            slow_a = (slow_a + b as u64) % ADLER_MOD as u64;
            slow_b = (slow_b + slow_a) % ADLER_MOD as u64;
        }
        assert_eq!(adler32(&big), ((slow_b as u32) << 16) | slow_a as u32);
    }
}
