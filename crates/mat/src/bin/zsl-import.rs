//! `zsl-import` — convert an xlsa17 benchmark (`res101.mat` +
//! `att_splits.mat`) into a zsl bundle directory.
//!
//! ```sh
//! zsl-import --res101 AWA2/res101.mat --att-splits AWA2/att_splits.mat \
//!     --out /tmp/awa2_bundle
//! # then train/evaluate against it:
//! cargo run --release --example eval_dataset -- train /tmp/awa2_bundle
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use zsl_mat::{MatBundle, DEFAULT_CHUNK_ROWS};

fn usage() -> ExitCode {
    eprintln!(
        "usage: zsl-import --res101 <res101.mat> --att-splits <att_splits.mat> --out <dir> \
         [--chunk-rows N]\n\n\
         Reads an xlsa17 'Proposed Splits' benchmark pair (MAT level-5, v6 or v7;\n\
         v7.3/HDF5 files are rejected — re-save with save(..., '-v7')) and writes a\n\
         bundle directory (features.zsb, signatures.csv, splits.txt) loadable by the\n\
         zsl-core trainers. Features are streamed --chunk-rows samples at a time\n\
         (default {DEFAULT_CHUNK_ROWS}), so memory stays flat regardless of dataset size; every\n\
         output file is written via an atomic temp-file rename."
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut res101: Option<PathBuf> = None;
    let mut att_splits: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut chunk_rows = DEFAULT_CHUNK_ROWS;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let Some(value) = args.get(i + 1) else {
            eprintln!("{flag} needs a value");
            return usage();
        };
        match flag {
            "--res101" => res101 = Some(value.into()),
            "--att-splits" => att_splits = Some(value.into()),
            "--out" => out = Some(value.into()),
            "--chunk-rows" => match value.parse() {
                Ok(n) if n > 0 => chunk_rows = n,
                _ => {
                    eprintln!("--chunk-rows needs a positive integer, got '{value}'");
                    return usage();
                }
            },
            _ => return usage(),
        }
        i += 2;
    }
    let (Some(res101), Some(att_splits), Some(out)) = (res101, att_splits, out) else {
        return usage();
    };

    let bundle = match MatBundle::open(&res101, &att_splits) {
        Ok(b) => b,
        Err(e) => return fail("open", e),
    };
    println!(
        "zsl-import: {} samples x {} features, {} classes x {} attributes \
         (trainval {}, test_seen {}, test_unseen {})",
        bundle.num_samples(),
        bundle.feature_dim(),
        bundle.num_classes(),
        bundle.attr_dim(),
        bundle.manifest().trainval.len(),
        bundle.manifest().test_seen.len(),
        bundle.manifest().test_unseen.len(),
    );
    let summary = match bundle.convert_to_zsb(&out, chunk_rows) {
        Ok(s) => s,
        Err(e) => return fail("convert", e),
    };
    println!(
        "zsl-import: wrote {} (features.zsb + signatures.csv + splits.txt, \
         {} unseen classes, chunk_rows {})",
        out.display(),
        summary.unseen_classes,
        chunk_rows,
    );
    ExitCode::SUCCESS
}

fn fail(stage: &str, e: zsl_mat::MatError) -> ExitCode {
    eprintln!("zsl-import: {stage} failed: {e}");
    let mut source = std::error::Error::source(&e);
    while let Some(inner) = source {
        eprintln!("  caused by: {inner}");
        source = inner.source();
    }
    ExitCode::FAILURE
}
