//! Typed errors for the `.mat` ingestion subsystem.
//!
//! Every failure — I/O, malformed containers, corrupted zlib payloads,
//! schema mismatches against the xlsa17 layout — is a [`MatError`], never a
//! panic: importers run over multi-GB files fetched from the network, and a
//! byte flip must produce a diagnosable rejection.

use crate::inflate::InflateError;
use std::path::PathBuf;
use zsl_core::data::DataError;

/// Error from reading a MAT-file or converting it to a dataset bundle.
#[derive(Debug)]
pub enum MatError {
    /// An underlying filesystem operation failed.
    Io {
        /// File the operation targeted.
        path: PathBuf,
        /// The OS-level error.
        source: std::io::Error,
    },
    /// The file ended before the bytes an element tag or header promised.
    Truncated {
        /// The truncated file.
        path: PathBuf,
        /// Where/what was cut short.
        message: String,
    },
    /// The 128-byte MAT header is invalid: bad magic text, an unknown endian
    /// indicator, or an unsupported version word.
    Header {
        /// The offending file.
        path: PathBuf,
        /// What was wrong.
        message: String,
    },
    /// The file is a MAT v7.3 (HDF5) container, which this reader
    /// deliberately rejects rather than misparse. Re-save with
    /// `save(..., '-v7')` or convert externally.
    UnsupportedV73 {
        /// The v7.3 file.
        path: PathBuf,
    },
    /// A well-formed construct this reader does not handle (complex or
    /// sparse arrays, preset zlib dictionaries, exotic element types).
    Unsupported {
        /// The offending file.
        path: PathBuf,
        /// What was encountered.
        message: String,
    },
    /// An element inside the file is structurally malformed (bad sub-element
    /// type, impossible byte count, dimension/count disagreement).
    Element {
        /// The offending file.
        path: PathBuf,
        /// What was wrong.
        message: String,
    },
    /// A compressed (`miCOMPRESSED`) element's zlib stream is malformed.
    Inflate {
        /// The offending file.
        path: PathBuf,
        /// The typed decompression failure.
        source: InflateError,
    },
    /// A compressed element decompressed cleanly but its Adler-32 trailer
    /// disagrees — the payload bytes are corrupt.
    Checksum {
        /// The offending file.
        path: PathBuf,
        /// Checksum stored in the stream trailer.
        expected: u32,
        /// Checksum of the decompressed payload.
        actual: u32,
    },
    /// A variable the xlsa17 layout requires is absent.
    MissingVariable {
        /// The file searched.
        path: PathBuf,
        /// The required variable name.
        name: String,
    },
    /// The variables are present but disagree with the xlsa17 schema
    /// (dimension mismatches, labels outside the `att` class count,
    /// out-of-range split indices, non-integral index values).
    Schema {
        /// The file whose contents violate the schema.
        path: PathBuf,
        /// What was wrong.
        message: String,
    },
    /// Writing the converted bundle failed (wraps the core dataset error).
    Data(DataError),
}

impl std::fmt::Display for MatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatError::Io { path, source } => {
                write!(f, "io error on {}: {source}", path.display())
            }
            MatError::Truncated { path, message } => {
                write!(f, "{} is truncated: {message}", path.display())
            }
            MatError::Header { path, message } => {
                write!(f, "bad MAT header in {}: {message}", path.display())
            }
            MatError::UnsupportedV73 { path } => write!(
                f,
                "{} is a MAT v7.3 (HDF5) file, which this importer does not read; \
                 re-save it with save(..., '-v7')",
                path.display()
            ),
            MatError::Unsupported { path, message } => {
                write!(
                    f,
                    "unsupported MAT construct in {}: {message}",
                    path.display()
                )
            }
            MatError::Element { path, message } => {
                write!(f, "malformed element in {}: {message}", path.display())
            }
            MatError::Inflate { path, source } => {
                write!(f, "bad compressed element in {}: {source}", path.display())
            }
            MatError::Checksum {
                path,
                expected,
                actual,
            } => write!(
                f,
                "corrupt compressed element in {}: Adler-32 trailer {expected:#010x} \
                 but payload hashes to {actual:#010x}",
                path.display()
            ),
            MatError::MissingVariable { path, name } => {
                write!(f, "{} does not define variable '{name}'", path.display())
            }
            MatError::Schema { path, message } => {
                write!(
                    f,
                    "xlsa17 schema violation in {}: {message}",
                    path.display()
                )
            }
            MatError::Data(e) => write!(f, "bundle write failed: {e}"),
        }
    }
}

impl std::error::Error for MatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MatError::Io { source, .. } => Some(source),
            MatError::Inflate { source, .. } => Some(source),
            MatError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for MatError {
    fn from(e: DataError) -> Self {
        MatError::Data(e)
    }
}

impl MatError {
    /// Wrap an I/O error with the path it occurred on.
    pub(crate) fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        MatError::Io {
            path: path.into(),
            source,
        }
    }

    /// Build a [`MatError::Header`].
    pub(crate) fn header(path: impl Into<PathBuf>, message: impl Into<String>) -> Self {
        MatError::Header {
            path: path.into(),
            message: message.into(),
        }
    }

    /// Build a [`MatError::Element`].
    pub(crate) fn element(path: impl Into<PathBuf>, message: impl Into<String>) -> Self {
        MatError::Element {
            path: path.into(),
            message: message.into(),
        }
    }

    /// Build a [`MatError::Truncated`].
    pub(crate) fn truncated(path: impl Into<PathBuf>, message: impl Into<String>) -> Self {
        MatError::Truncated {
            path: path.into(),
            message: message.into(),
        }
    }

    /// Build a [`MatError::Unsupported`].
    pub(crate) fn unsupported(path: impl Into<PathBuf>, message: impl Into<String>) -> Self {
        MatError::Unsupported {
            path: path.into(),
            message: message.into(),
        }
    }

    /// Build a [`MatError::Schema`].
    pub(crate) fn schema(path: impl Into<PathBuf>, message: impl Into<String>) -> Self {
        MatError::Schema {
            path: path.into(),
            message: message.into(),
        }
    }

    /// Translate an `io::Error` raised while reading (possibly decompressed)
    /// element bytes into the right typed variant: typed inflate failures
    /// keep their structure (checksum mismatches get their own variant),
    /// unexpected EOF becomes [`MatError::Truncated`], everything else is
    /// plain I/O.
    pub(crate) fn from_read(path: impl Into<PathBuf>, err: std::io::Error) -> Self {
        let path = path.into();
        if let Some(inf) = InflateError::from_io(&err) {
            return match *inf {
                InflateError::ChecksumMismatch { expected, actual } => MatError::Checksum {
                    path,
                    expected,
                    actual,
                },
                ref other => MatError::Inflate {
                    path,
                    source: other.clone(),
                },
            };
        }
        if err.kind() == std::io::ErrorKind::UnexpectedEof {
            return MatError::truncated(path, "file ended inside an element's data");
        }
        MatError::Io { path, source: err }
    }
}
