//! Bounded-memory streaming over a 2-D numeric MAT variable.
//!
//! MATLAB stores matrices column-major, and the xlsa17 `features` matrix is
//! `d x N` — one *column* per sample. Column-major `d x N` means each
//! sample's `d` feature values are contiguous on disk, so reading `k`
//! consecutive columns yields, byte-for-byte, a row-major `k x d` matrix of
//! samples. [`ColumnChunkReader`] exploits that: it decodes `chunk_cols`
//! columns at a time into a [`Matrix`] whose rows are samples, keeping peak
//! memory at `O(chunk_cols * d)` regardless of `N`.

use crate::error::MatError;
use crate::mat5::{ByteOrder, ValueSource};
use std::io::Read;
use std::path::PathBuf;
use zsl_core::linalg::Matrix;

/// Streaming decoder yielding consecutive column chunks of a 2-D numeric
/// variable as row-major sample matrices.
///
/// Create via [`MatFile::stream_columns`](crate::MatFile::stream_columns).
/// Also usable as an `Iterator<Item = Result<Matrix, MatError>>`.
pub struct ColumnChunkReader {
    source: ValueSource,
    path: PathBuf,
    order: ByteOrder,
    pr_type: u32,
    vsize: usize,
    rows: usize,
    cols: usize,
    chunk_cols: usize,
    cols_read: usize,
    /// Set once the source has been drained and (for compressed elements)
    /// its Adler-32 trailer verified.
    finished: bool,
    /// Reused raw-byte buffer, `chunk_cols * rows * vsize` at most.
    buf: Vec<u8>,
}

impl ColumnChunkReader {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        source: ValueSource,
        path: PathBuf,
        order: ByteOrder,
        pr_type: u32,
        vsize: usize,
        rows: usize,
        cols: usize,
        chunk_cols: usize,
    ) -> Self {
        ColumnChunkReader {
            source,
            path,
            order,
            pr_type,
            vsize,
            rows,
            cols,
            chunk_cols,
            cols_read: 0,
            finished: false,
            buf: Vec::new(),
        }
    }

    /// Number of rows in the MATLAB matrix (the feature dimension `d` for
    /// an xlsa17 `features` variable).
    pub fn feature_dim(&self) -> usize {
        self.rows
    }

    /// Number of columns in the MATLAB matrix (the sample count `N`).
    pub fn total_cols(&self) -> usize {
        self.cols
    }

    /// Columns decoded so far.
    pub fn cols_read(&self) -> usize {
        self.cols_read
    }

    /// Decode the next chunk: up to `chunk_cols` MATLAB columns, returned
    /// as a row-major matrix with one *row* per column (sample). Returns
    /// `Ok(None)` after the last chunk, at which point compressed sources
    /// have been drained and their checksum verified.
    pub fn next_chunk(&mut self) -> Result<Option<Matrix>, MatError> {
        if self.cols_read >= self.cols || self.rows == 0 {
            if !self.finished {
                self.source.drain_and_verify(&self.path)?;
                self.finished = true;
            }
            return Ok(None);
        }
        let take_cols = self.chunk_cols.min(self.cols - self.cols_read);
        let nbytes = take_cols * self.rows * self.vsize;
        self.buf.resize(nbytes, 0);
        self.source
            .read_exact(&mut self.buf[..nbytes])
            .map_err(|e| MatError::from_read(&self.path, e))?;
        let mut data = Vec::with_capacity(take_cols * self.rows);
        for chunk in self.buf[..nbytes].chunks_exact(self.vsize) {
            data.push(self.order.widen(self.pr_type, chunk));
        }
        self.cols_read += take_cols;
        if self.cols_read >= self.cols && !self.finished {
            self.source.drain_and_verify(&self.path)?;
            self.finished = true;
        }
        Ok(Some(Matrix::from_vec(take_cols, self.rows, data)))
    }
}

impl Iterator for ColumnChunkReader {
    type Item = Result<Matrix, MatError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_chunk().transpose()
    }
}
