//! The xlsa17 mapping layer: `res101.mat` + `att_splits.mat` → a zsl
//! bundle directory.
//!
//! The "Proposed Splits" distribution (Xian et al., the evaluation protocol
//! every published GZSL number uses for AWA2/CUB/SUN/APY) ships each
//! benchmark as two MAT-files:
//!
//! - `res101.mat` — `features` (`d x N` double, one *column* per sample,
//!   ResNet-101 embeddings) and `labels` (`N x 1`, 1-based class ids);
//! - `att_splits.mat` — `att` (`attr x class` signature matrix, columns
//!   L2-normalized per class) and the 1-based sample-index arrays
//!   `trainval_loc`, `test_seen_loc`, `test_unseen_loc`.
//!
//! [`MatBundle::open`] validates the pair against that schema (every
//! mismatch is a typed [`MatError`], checked *before* any multi-GB decode
//! starts) and [`MatBundle::convert_to_zsb`] writes the equivalent bundle —
//! `features.zsb` + `signatures.csv` + `splits.txt` — that
//! [`zsl_core::DatasetBundle`] and [`zsl_core::StreamingBundle`] load. The
//! feature matrix is streamed column-chunk-at-a-time through
//! [`zsl_core::ZsbWriter`], so peak memory is `O(chunk_rows x d)` no matter
//! how many samples the benchmark has; column-major `d x N` storage makes
//! each streamed chunk *already* row-major samples-by-features, so no
//! transpose pass ever materializes. All bundle files land via the crash-safe
//! unique-temp-then-rename pattern, so a killed import never leaves a
//! half-written bundle behind.

use crate::error::MatError;
use crate::mat5::{MatFile, NumericArray};
use std::path::Path;
use zsl_core::data::{SplitManifest, ZsbWriter};
use zsl_core::linalg::Matrix;

/// `features.zsb` file name inside a converted bundle.
const FEATURES_ZSB: &str = "features.zsb";
/// `signatures.csv` file name inside a converted bundle.
const SIGNATURES_CSV: &str = "signatures.csv";
/// `splits.txt` file name inside a converted bundle.
const SPLITS_TXT: &str = "splits.txt";

/// Default number of samples decoded per streaming chunk.
pub const DEFAULT_CHUNK_ROWS: usize = 512;

/// A validated xlsa17 benchmark pair, ready to convert.
///
/// Everything except the feature matrix is resident (`att`, labels, split
/// indices — all small); features stay in `res101.mat` until
/// [`MatBundle::convert_to_zsb`] streams them out.
#[derive(Debug)]
pub struct MatBundle {
    res: MatFile,
    /// `att` values, column-major `attr x class` — which is byte-for-byte a
    /// row-major `class x attr` matrix, the orientation `signatures.csv`
    /// wants.
    att: NumericArray,
    /// Raw 1-based class label per sample.
    labels: Vec<u32>,
    /// 0-based split manifest (converted from the 1-based `*_loc` arrays).
    manifest: SplitManifest,
    feature_dim: usize,
    num_samples: usize,
    num_classes: usize,
    attr_dim: usize,
}

/// What an import produced, for logging and assertions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImportSummary {
    /// Samples written to `features.zsb`.
    pub num_samples: usize,
    /// Feature dimension `d`.
    pub feature_dim: usize,
    /// Classes in the signature table.
    pub num_classes: usize,
    /// Attributes per class signature.
    pub attr_dim: usize,
    /// `trainval` split size.
    pub trainval: usize,
    /// `test_seen` split size.
    pub test_seen: usize,
    /// `test_unseen` split size.
    pub test_unseen: usize,
    /// Distinct classes appearing in `test_unseen`.
    pub unseen_classes: usize,
}

/// Read a numeric variable and convert it to 0-based sample indices,
/// validating that every value is an integral 1-based index in range.
fn read_loc(file: &MatFile, name: &str, num_samples: usize) -> Result<Vec<usize>, MatError> {
    let arr = file.read_numeric(name)?;
    arr.data
        .iter()
        .map(|&v| {
            if v.fract() != 0.0 || v < 1.0 || v > num_samples as f64 {
                return Err(MatError::schema(
                    file.path(),
                    format!("{name} value {v} is not a 1-based sample index in 1..={num_samples}"),
                ));
            }
            Ok(v as usize - 1)
        })
        .collect()
}

impl MatBundle {
    /// Open and cross-validate an xlsa17 pair.
    ///
    /// Checks, in order: both containers parse; `features` is a 2-D numeric
    /// `d x N` matrix; `att` is a 2-D numeric `attr x class` matrix;
    /// `labels` has exactly `N` integral entries in `1..=class` (anything
    /// else is the dim/class-count-mismatch [`MatError::Schema`]); every
    /// `*_loc` index is an integral 1-based sample index; and the resulting
    /// manifest passes the core split validation (no overlap, nothing out
    /// of range, no empty split).
    pub fn open(res101: &Path, att_splits: &Path) -> Result<Self, MatError> {
        let res = MatFile::open(res101)?;
        let splits = MatFile::open(att_splits)?;

        let features = res.require("features")?;
        if features.dims.len() != 2 {
            return Err(MatError::schema(
                res101,
                format!(
                    "features must be a 2-D d x N matrix, found dims {:?}",
                    features.dims
                ),
            ));
        }
        let (feature_dim, num_samples) = (features.dims[0], features.dims[1]);
        if feature_dim == 0 || num_samples == 0 {
            return Err(MatError::schema(
                res101,
                format!("features is empty: dims {:?}", features.dims),
            ));
        }

        let att = splits.read_numeric("att")?;
        if att.dims.len() != 2 || att.dims[0] == 0 || att.dims[1] == 0 {
            return Err(MatError::schema(
                att_splits,
                format!(
                    "att must be a non-empty 2-D attr x class matrix, found dims {:?}",
                    att.dims
                ),
            ));
        }
        let (attr_dim, num_classes) = (att.dims[0], att.dims[1]);

        let raw_labels = res.read_numeric("labels")?;
        if raw_labels.data.len() != num_samples {
            return Err(MatError::schema(
                res101,
                format!(
                    "labels has {} entries but features has {num_samples} columns",
                    raw_labels.data.len()
                ),
            ));
        }
        let labels: Vec<u32> = raw_labels
            .data
            .iter()
            .map(|&v| {
                if v.fract() != 0.0 || v < 1.0 || v > num_classes as f64 {
                    return Err(MatError::schema(
                        res.path(),
                        format!(
                            "label {v} is not an integral class id in 1..={num_classes} \
                             (att defines {num_classes} classes)"
                        ),
                    ));
                }
                Ok(v as u32)
            })
            .collect::<Result<_, _>>()?;

        let trainval = read_loc(&splits, "trainval_loc", num_samples)?;
        let test_seen = read_loc(&splits, "test_seen_loc", num_samples)?;
        let test_unseen = read_loc(&splits, "test_unseen_loc", num_samples)?;

        // Declare the unseen-class set from the test_unseen samples so the
        // core loader's class-set cross-check is armed.
        let mut unseen: Vec<u32> = test_unseen.iter().map(|&i| labels[i]).collect();
        unseen.sort_unstable();
        unseen.dedup();

        let manifest = SplitManifest {
            trainval,
            test_seen,
            test_unseen,
            unseen_classes: Some(unseen),
        };
        manifest.validate(num_samples)?;

        Ok(MatBundle {
            res,
            att,
            labels,
            manifest,
            feature_dim,
            num_samples,
            num_classes,
            attr_dim,
        })
    }

    /// Samples in the benchmark.
    pub fn num_samples(&self) -> usize {
        self.num_samples
    }

    /// Feature dimension `d`.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Classes defined by `att`.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Attributes per class signature.
    pub fn attr_dim(&self) -> usize {
        self.attr_dim
    }

    /// The 0-based split manifest.
    pub fn manifest(&self) -> &SplitManifest {
        &self.manifest
    }

    /// Raw 1-based class label per sample.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Convert to a bundle directory loadable by [`zsl_core::DatasetBundle`]
    /// and [`zsl_core::StreamingBundle`]: `features.zsb` (streamed,
    /// `chunk_rows` samples resident at a time), `signatures.csv` (class
    /// labels `1..=z` in `att` column order), and `splits.txt`. Existing
    /// files are replaced atomically.
    pub fn convert_to_zsb(
        &self,
        out_dir: &Path,
        chunk_rows: usize,
    ) -> Result<ImportSummary, MatError> {
        std::fs::create_dir_all(out_dir).map_err(|e| MatError::io(out_dir, e))?;

        // Signatures: att's column-major attr x class buffer *is* the
        // row-major class x attr table, so no transpose loop.
        let signatures = Matrix::from_vec(self.num_classes, self.attr_dim, self.att.data.clone());
        let class_labels: Vec<u32> = (1..=self.num_classes as u32).collect();
        zsl_core::data::format::write_signatures_csv(
            &out_dir.join(SIGNATURES_CSV),
            &class_labels,
            &signatures,
        )?;

        self.manifest.write(&out_dir.join(SPLITS_TXT))?;

        // Features: stream d x N columns straight into the .zsb writer —
        // each chunk of k columns arrives as a row-major k x d sample block.
        let mut writer =
            ZsbWriter::create(&out_dir.join(FEATURES_ZSB), &self.labels, self.feature_dim)?;
        let mut chunks = self.res.stream_columns("features", chunk_rows.max(1))?;
        while let Some(chunk) = chunks.next_chunk()? {
            writer.append_rows(&chunk)?;
        }
        writer.finish()?;

        Ok(ImportSummary {
            num_samples: self.num_samples,
            feature_dim: self.feature_dim,
            num_classes: self.num_classes,
            attr_dim: self.attr_dim,
            trainval: self.manifest.trainval.len(),
            test_seen: self.manifest.test_seen.len(),
            test_unseen: self.manifest.test_unseen.len(),
            unseen_classes: self
                .manifest
                .unseen_classes
                .as_ref()
                .map(Vec::len)
                .unwrap_or(0),
        })
    }
}
