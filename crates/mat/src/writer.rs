//! A minimal MAT level-5 *writer*, used to generate test fixtures
//! byte-by-byte.
//!
//! This is not a general-purpose MATLAB exporter: it emits exactly the
//! constructs the reader must handle — numeric arrays (optionally stored as
//! a narrower element type than their class, as MATLAB's auto-narrowing
//! does), small-element names, both byte orders, and `miCOMPRESSED`
//! wrapping via two std-only zlib encoders (stored blocks and
//! fixed-Huffman literals). Differential tests round-trip synthetic
//! datasets through it so the reader is proven against independently
//! constructed bytes, not against its own output alone.

use crate::inflate::adler32;
use crate::mat5::{mi, mi_value_size, ByteOrder};
use std::path::Path;

/// How a top-level array element is encoded on disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Compression {
    /// Plain `miMATRIX` element.
    #[default]
    None,
    /// `miCOMPRESSED` wrapping a zlib stream of stored (uncompressed)
    /// deflate blocks.
    Stored,
    /// `miCOMPRESSED` wrapping a zlib stream of fixed-Huffman literal-only
    /// deflate blocks.
    FixedHuffman,
}

/// Per-array encoding options.
#[derive(Clone, Copy, Debug)]
pub struct ArrayOpts {
    /// Element type the values are stored as (MATLAB narrows `double`
    /// arrays whose values fit a small integer type).
    pub store_as: u32,
    /// Top-level element encoding.
    pub compression: Compression,
    /// `mxCLASS` code written to the array flags (6 = `mxDOUBLE_CLASS`).
    pub class_code: u8,
    /// Set the complex flag (the reader must reject such arrays).
    pub complex: bool,
}

impl Default for ArrayOpts {
    fn default() -> Self {
        ArrayOpts {
            store_as: mi::DOUBLE,
            compression: Compression::None,
            class_code: 6,
            complex: false,
        }
    }
}

/// Builder for a MAT level-5 file.
pub struct MatWriter {
    order: ByteOrder,
    out: Vec<u8>,
}

impl MatWriter {
    /// Start a file in the given byte order, writing the 128-byte header.
    pub fn new(order: ByteOrder) -> Self {
        let mut out = Vec::new();
        let text = b"MATLAB 5.0 MAT-file, Platform: zsl-mat fixture writer";
        let mut header = [b' '; 116];
        header[..text.len()].copy_from_slice(text);
        out.extend_from_slice(&header);
        out.extend_from_slice(&[0u8; 8]); // subsystem data offset: none
        match order {
            ByteOrder::Little => {
                out.extend_from_slice(&0x0100u16.to_le_bytes());
                out.extend_from_slice(b"IM");
            }
            ByteOrder::Big => {
                out.extend_from_slice(&0x0100u16.to_be_bytes());
                out.extend_from_slice(b"MI");
            }
        }
        debug_assert_eq!(out.len(), 128);
        MatWriter { order, out }
    }

    /// Append a `double`-class array stored as `miDOUBLE`, uncompressed.
    pub fn add_f64(&mut self, name: &str, dims: &[usize], data: &[f64]) {
        self.add_array(name, dims, data, ArrayOpts::default());
    }

    /// Append a numeric array with explicit encoding options.
    ///
    /// `data` is in MATLAB (column-major) order and is encoded element-wise
    /// into `opts.store_as`; values must be exactly representable in that
    /// type (fixtures control their own data).
    pub fn add_array(&mut self, name: &str, dims: &[usize], data: &[f64], opts: ArrayOpts) {
        assert_eq!(
            dims.iter().product::<usize>(),
            data.len(),
            "dims {dims:?} disagree with {} values",
            data.len()
        );
        let body = self.matrix_body(name, dims, data, opts);
        match opts.compression {
            Compression::None => {
                self.push_u32(mi::MATRIX);
                self.push_u32(body.len() as u32);
                self.out.extend_from_slice(&body);
                // body is a sequence of padded sub-elements, already 8-aligned
                debug_assert_eq!(body.len() % 8, 0);
            }
            Compression::Stored | Compression::FixedHuffman => {
                let mut element = Vec::new();
                push_u32_order(&mut element, self.order, mi::MATRIX);
                push_u32_order(&mut element, self.order, body.len() as u32);
                element.extend_from_slice(&body);
                let compressed = match opts.compression {
                    Compression::Stored => zlib_stored(&element),
                    _ => zlib_fixed(&element),
                };
                self.push_u32(mi::COMPRESSED);
                self.push_u32(compressed.len() as u32);
                // miCOMPRESSED data is written unpadded, as MATLAB does.
                self.out.extend_from_slice(&compressed);
            }
        }
    }

    /// Append raw bytes verbatim — lets corrupt-fixture tests splice in
    /// malformed elements.
    pub fn add_raw(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    /// Finish and return the file bytes.
    pub fn finish(self) -> Vec<u8> {
        self.out
    }

    /// Finish and write the file to disk.
    pub fn write_to(self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.finish())
    }

    /// Serialize the sub-element sequence of a `miMATRIX` (array flags,
    /// dimensions, name, pr data), each padded to 8 bytes.
    fn matrix_body(&self, name: &str, dims: &[usize], data: &[f64], opts: ArrayOpts) -> Vec<u8> {
        let order = self.order;
        let mut body = Vec::new();

        // Array flags: miUINT32 x 2.
        let mut flags_word = opts.class_code as u32;
        if opts.complex {
            flags_word |= 0x0800;
        }
        push_u32_order(&mut body, order, mi::UINT32);
        push_u32_order(&mut body, order, 8);
        push_u32_order(&mut body, order, flags_word);
        push_u32_order(&mut body, order, 0); // nzmax

        // Dimensions: miINT32.
        push_u32_order(&mut body, order, mi::INT32);
        push_u32_order(&mut body, order, (dims.len() * 4) as u32);
        for &d in dims {
            push_u32_order(&mut body, order, d as u32);
        }
        pad8(&mut body);

        // Array name: miINT8, small-element form when it fits (as MATLAB
        // writes short names).
        if name.len() <= 4 {
            let word = mi::INT8 | ((name.len() as u32) << 16);
            push_u32_order(&mut body, order, word);
            let mut region = [0u8; 4];
            region[..name.len()].copy_from_slice(name.as_bytes());
            body.extend_from_slice(&region);
        } else {
            push_u32_order(&mut body, order, mi::INT8);
            push_u32_order(&mut body, order, name.len() as u32);
            body.extend_from_slice(name.as_bytes());
            pad8(&mut body);
        }

        // Real-part data, encoded element-wise into the storage type.
        let vsize = mi_value_size(opts.store_as).expect("storage type must be numeric");
        let nbytes = data.len() * vsize;
        push_u32_order(&mut body, order, opts.store_as);
        push_u32_order(&mut body, order, nbytes as u32);
        for &v in data {
            encode_value(&mut body, order, opts.store_as, v);
        }
        pad8(&mut body);

        if opts.complex {
            // An imaginary part mirroring the real part, so the element is
            // structurally complete even though the reader rejects it.
            push_u32_order(&mut body, order, opts.store_as);
            push_u32_order(&mut body, order, nbytes as u32);
            for &v in data {
                encode_value(&mut body, order, opts.store_as, v);
            }
            pad8(&mut body);
        }

        body
    }

    fn push_u32(&mut self, v: u32) {
        push_u32_order(&mut self.out, self.order, v);
    }
}

fn push_u32_order(out: &mut Vec<u8>, order: ByteOrder, v: u32) {
    match order {
        ByteOrder::Little => out.extend_from_slice(&v.to_le_bytes()),
        ByteOrder::Big => out.extend_from_slice(&v.to_be_bytes()),
    }
}

fn pad8(out: &mut Vec<u8>) {
    while !out.len().is_multiple_of(8) {
        out.push(0);
    }
}

/// Encode one `f64` as the given element type in the given byte order.
/// Panics if the value is not exactly representable — fixtures own their
/// data, so a lossy narrow is a bug in the test, not a runtime condition.
fn encode_value(out: &mut Vec<u8>, order: ByteOrder, ty: u32, v: f64) {
    macro_rules! narrow {
        ($t:ty) => {{
            let n = v as $t;
            assert_eq!(
                n as f64,
                v,
                "{v} is not exactly representable as {}",
                stringify!($t)
            );
            match order {
                ByteOrder::Little => out.extend_from_slice(&n.to_le_bytes()),
                ByteOrder::Big => out.extend_from_slice(&n.to_be_bytes()),
            }
        }};
    }
    match ty {
        mi::INT8 => narrow!(i8),
        mi::UINT8 => narrow!(u8),
        mi::INT16 => narrow!(i16),
        mi::UINT16 => narrow!(u16),
        mi::INT32 => narrow!(i32),
        mi::UINT32 => narrow!(u32),
        mi::INT64 => narrow!(i64),
        mi::UINT64 => narrow!(u64),
        mi::SINGLE => {
            let n = v as f32;
            assert_eq!(n as f64, v, "{v} is not exactly representable as f32");
            match order {
                ByteOrder::Little => out.extend_from_slice(&n.to_bits().to_le_bytes()),
                ByteOrder::Big => out.extend_from_slice(&n.to_bits().to_be_bytes()),
            }
        }
        mi::DOUBLE => match order {
            ByteOrder::Little => out.extend_from_slice(&v.to_bits().to_le_bytes()),
            ByteOrder::Big => out.extend_from_slice(&v.to_bits().to_be_bytes()),
        },
        other => panic!("cannot encode element type {other}"),
    }
}

/// zlib-wrap `data` using stored (BTYPE=00) deflate blocks. Valid per RFC
/// 1950/1951; no compression, but exercises the reader's stored-block and
/// multi-block paths (blocks cap at 65535 bytes).
pub fn zlib_stored(data: &[u8]) -> Vec<u8> {
    let mut out = vec![0x78, 0x01]; // CMF/FLG: 32K window, fastest, (0x7801 % 31 == 0)
    let mut chunks = data.chunks(65_535).peekable();
    if data.is_empty() {
        // A final empty stored block.
        out.extend_from_slice(&[0x01, 0x00, 0x00, 0xFF, 0xFF]);
    }
    while let Some(chunk) = chunks.next() {
        let last = chunks.peek().is_none();
        out.push(if last { 0x01 } else { 0x00 }); // BFINAL + BTYPE=00, then byte-aligned
        let len = chunk.len() as u16;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&(!len).to_le_bytes());
        out.extend_from_slice(chunk);
    }
    out.extend_from_slice(&adler32(data).to_be_bytes());
    out
}

/// zlib-wrap `data` as one fixed-Huffman (BTYPE=01) deflate block emitting
/// every byte as a literal. No back-references, but a genuinely
/// Huffman-coded stream — exercises the reader's fixed-table decode path.
pub fn zlib_fixed(data: &[u8]) -> Vec<u8> {
    let mut out = vec![0x78, 0x01];
    let mut bits = BitSink::new();
    bits.push_bits(1, 1); // BFINAL
    bits.push_bits(0b01, 2); // BTYPE = fixed Huffman
    for &b in data {
        let (code, len) = fixed_literal_code(b as u16);
        bits.push_code(code, len);
    }
    let (code, len) = fixed_literal_code(256); // end of block
    bits.push_code(code, len);
    out.extend_from_slice(&bits.finish());
    out.extend_from_slice(&adler32(data).to_be_bytes());
    out
}

/// The RFC 1951 fixed literal/length code for a symbol.
fn fixed_literal_code(sym: u16) -> (u16, u32) {
    match sym {
        0..=143 => (0b0011_0000 + sym, 8),
        144..=255 => (0b1_1001_0000 + (sym - 144), 9),
        256..=279 => (sym - 256, 7),
        _ => (0b1100_0000 + (sym - 280), 8),
    }
}

/// LSB-first deflate bit packer. Huffman codes go in MSB-first
/// (`push_code`); everything else LSB-first (`push_bits`).
struct BitSink {
    out: Vec<u8>,
    bitbuf: u32,
    nbits: u32,
}

impl BitSink {
    fn new() -> Self {
        BitSink {
            out: Vec::new(),
            bitbuf: 0,
            nbits: 0,
        }
    }

    fn push_bits(&mut self, value: u32, n: u32) {
        self.bitbuf |= value << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.bitbuf & 0xFF) as u8);
            self.bitbuf >>= 8;
            self.nbits -= 8;
        }
    }

    fn push_code(&mut self, code: u16, len: u32) {
        for i in (0..len).rev() {
            self.push_bits(((code >> i) & 1) as u32, 1);
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.bitbuf & 0xFF) as u8);
        }
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::ZlibDecoder;
    use std::io::Read;

    fn inflate_all(bytes: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        ZlibDecoder::new(bytes)
            .read_to_end(&mut out)
            .expect("writer output must inflate");
        out
    }

    #[test]
    fn stored_roundtrip() {
        for len in [0usize, 1, 7, 8, 65_535, 65_536, 70_000] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            assert_eq!(inflate_all(&zlib_stored(&data)), data, "len {len}");
        }
    }

    #[test]
    fn fixed_roundtrip() {
        for len in [0usize, 1, 9, 255, 4096] {
            // Cover both the 8-bit (0..=143) and 9-bit (144..=255) literal ranges.
            let data: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
            assert_eq!(inflate_all(&zlib_fixed(&data)), data, "len {len}");
        }
    }
}
