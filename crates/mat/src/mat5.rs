//! MAT-file level-5 container parsing: the 128-byte header, the
//! tag/element stream, and the `miMATRIX` sub-element tree.
//!
//! [`MatFile::open`] scans the top level of a `.mat` file and records, for
//! every variable, its name, array class, dimensions, and *where its numeric
//! data lives* — an absolute file offset for plain elements, or a
//! (compressed-element, decompressed-offset) pair for `miCOMPRESSED` (v7)
//! elements. Nothing large is resident after the scan: actual values are
//! read on demand by [`MatFile::read_numeric`] (small arrays, widened to
//! `f64`) or streamed column-chunk-at-a-time by [`MatFile::stream_columns`]
//! (the multi-GB `features` matrix path).
//!
//! Both byte orders are handled — the header's endian indicator decides how
//! every integer and float in the file is decoded — and MAT v7.3 (HDF5)
//! containers are detected by their version word / HDF5 magic and rejected
//! with the typed [`MatError::UnsupportedV73`] instead of being misparsed.

use crate::error::MatError;
use crate::inflate::ZlibDecoder;
use crate::stream::ColumnChunkReader;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// MAT element data types (Table 1-1 of the MAT-file format spec).
pub mod mi {
    /// 8-bit signed.
    pub const INT8: u32 = 1;
    /// 8-bit unsigned.
    pub const UINT8: u32 = 2;
    /// 16-bit signed.
    pub const INT16: u32 = 3;
    /// 16-bit unsigned.
    pub const UINT16: u32 = 4;
    /// 32-bit signed.
    pub const INT32: u32 = 5;
    /// 32-bit unsigned.
    pub const UINT32: u32 = 6;
    /// IEEE single.
    pub const SINGLE: u32 = 7;
    /// IEEE double.
    pub const DOUBLE: u32 = 9;
    /// 64-bit signed.
    pub const INT64: u32 = 12;
    /// 64-bit unsigned.
    pub const UINT64: u32 = 13;
    /// An array (the sub-element tree).
    pub const MATRIX: u32 = 14;
    /// A zlib-wrapped element (MAT v7).
    pub const COMPRESSED: u32 = 15;
    /// UTF-8 text.
    pub const UTF8: u32 = 16;
}

/// Byte size of a numeric element type, or `None` for non-numeric types.
pub(crate) fn mi_value_size(ty: u32) -> Option<usize> {
    match ty {
        mi::INT8 | mi::UINT8 => Some(1),
        mi::INT16 | mi::UINT16 => Some(2),
        mi::INT32 | mi::UINT32 | mi::SINGLE => Some(4),
        mi::DOUBLE | mi::INT64 | mi::UINT64 => Some(8),
        _ => None,
    }
}

/// MATLAB array classes (`mxCLASS` values from the Array Flags
/// sub-element).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatClass {
    /// Cell array (skipped by the numeric readers).
    Cell,
    /// Struct array.
    Struct,
    /// Object array.
    Object,
    /// Character array.
    Char,
    /// Sparse numeric array (unsupported).
    Sparse,
    /// `double`.
    Double,
    /// `single`.
    Single,
    /// `int8`.
    Int8,
    /// `uint8`.
    UInt8,
    /// `int16`.
    Int16,
    /// `uint16`.
    UInt16,
    /// `int32`.
    Int32,
    /// `uint32`.
    UInt32,
    /// `int64`.
    Int64,
    /// `uint64`.
    UInt64,
    /// Any class code this reader does not know.
    Other(u8),
}

impl MatClass {
    fn from_code(code: u8) -> Self {
        match code {
            1 => MatClass::Cell,
            2 => MatClass::Struct,
            3 => MatClass::Object,
            4 => MatClass::Char,
            5 => MatClass::Sparse,
            6 => MatClass::Double,
            7 => MatClass::Single,
            8 => MatClass::Int8,
            9 => MatClass::UInt8,
            10 => MatClass::Int16,
            11 => MatClass::UInt16,
            12 => MatClass::Int32,
            13 => MatClass::UInt32,
            14 => MatClass::Int64,
            15 => MatClass::UInt64,
            other => MatClass::Other(other),
        }
    }

    /// True for the numeric classes the readers can widen to `f64`.
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            MatClass::Double
                | MatClass::Single
                | MatClass::Int8
                | MatClass::UInt8
                | MatClass::Int16
                | MatClass::UInt16
                | MatClass::Int32
                | MatClass::UInt32
                | MatClass::Int64
                | MatClass::UInt64
        )
    }
}

/// Byte order of a MAT file, decided by the header's endian indicator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ByteOrder {
    /// Least-significant byte first (`IM` indicator).
    Little,
    /// Most-significant byte first (`MI` indicator).
    Big,
}

impl ByteOrder {
    #[inline]
    pub(crate) fn u16(self, b: [u8; 2]) -> u16 {
        match self {
            ByteOrder::Little => u16::from_le_bytes(b),
            ByteOrder::Big => u16::from_be_bytes(b),
        }
    }

    #[inline]
    pub(crate) fn u32(self, b: [u8; 4]) -> u32 {
        match self {
            ByteOrder::Little => u32::from_le_bytes(b),
            ByteOrder::Big => u32::from_be_bytes(b),
        }
    }

    #[inline]
    pub(crate) fn i32(self, b: [u8; 4]) -> i32 {
        match self {
            ByteOrder::Little => i32::from_le_bytes(b),
            ByteOrder::Big => i32::from_be_bytes(b),
        }
    }

    /// Widen one stored value of element type `ty` to `f64`.
    #[inline]
    pub(crate) fn widen(self, ty: u32, b: &[u8]) -> f64 {
        match ty {
            mi::INT8 => b[0] as i8 as f64,
            mi::UINT8 => b[0] as f64,
            mi::INT16 => self.u16([b[0], b[1]]) as i16 as f64,
            mi::UINT16 => self.u16([b[0], b[1]]) as f64,
            mi::INT32 => self.i32([b[0], b[1], b[2], b[3]]) as f64,
            mi::UINT32 => self.u32([b[0], b[1], b[2], b[3]]) as f64,
            mi::SINGLE => f32::from_bits(self.u32([b[0], b[1], b[2], b[3]])) as f64,
            mi::DOUBLE => {
                f64::from_bits(self.u64([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
            }
            mi::INT64 => self.u64([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]) as i64 as f64,
            mi::UINT64 => self.u64([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]) as f64,
            _ => unreachable!("caller validated the element type is numeric"),
        }
    }

    #[inline]
    pub(crate) fn u64(self, b: [u8; 8]) -> u64 {
        match self {
            ByteOrder::Little => u64::from_le_bytes(b),
            ByteOrder::Big => u64::from_be_bytes(b),
        }
    }
}

/// HDF5 superblock signature — a MAT v7.3 file either carries this at
/// offset 0 (rare, headerless) or declares version `0x0200` in the MAT
/// header.
const HDF5_MAGIC: [u8; 8] = [0x89, b'H', b'D', b'F', b'\r', b'\n', 0x1A, b'\n'];
/// MAT header length.
pub(crate) const HEADER_LEN: u64 = 128;
/// Caps on scan-time sub-element sizes (attacker-controlled byte counts
/// must not drive allocations).
const MAX_DIMS_BYTES: u32 = 4 * 1024;
const MAX_NAME_BYTES: u32 = 64 * 1024;

/// Where a variable's numeric (`pr`) data lives.
#[derive(Clone, Debug)]
pub(crate) enum VarLoc {
    /// Uncompressed element: absolute file offset of the data bytes.
    Plain {
        /// Absolute offset of the first `pr` data byte.
        pr_offset: u64,
    },
    /// `miCOMPRESSED` element: re-inflate from `comp_offset` and skip
    /// `pr_skip` decompressed bytes to reach the data.
    Compressed {
        /// Absolute offset of the zlib stream.
        comp_offset: u64,
        /// Compressed byte count (from the element tag).
        comp_len: u64,
        /// Decompressed bytes preceding the `pr` data.
        pr_skip: u64,
    },
}

/// One top-level variable discovered by the scan.
#[derive(Clone, Debug)]
pub struct MatVar {
    /// Variable name (the Array Name sub-element).
    pub name: String,
    /// Array class.
    pub class: MatClass,
    /// Dimensions, in MATLAB (column-major) order.
    pub dims: Vec<usize>,
    /// True when the complex flag is set (pr + pi parts).
    pub complex: bool,
    pub(crate) loc: Option<VarLoc>,
    /// Element type the values are stored as (MATLAB auto-narrows, so a
    /// `double` array may carry e.g. `miUINT8` data).
    pub(crate) pr_type: u32,
    /// Stored byte count of the `pr` data.
    pub(crate) pr_bytes: u64,
}

impl MatVar {
    /// Total element count (product of dims).
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }
}

/// A dense numeric array read in full, widened to `f64`.
///
/// `data` keeps MATLAB's column-major order: element `(i, j)` of a 2-D
/// array is `data[j * dims[0] + i]`.
#[derive(Clone, Debug, PartialEq)]
pub struct NumericArray {
    /// Dimensions, column-major order.
    pub dims: Vec<usize>,
    /// Values, column-major.
    pub data: Vec<f64>,
}

/// A scanned MAT level-5 file: variable directory plus the byte order, with
/// values read lazily.
#[derive(Debug)]
pub struct MatFile {
    path: PathBuf,
    order: ByteOrder,
    vars: Vec<MatVar>,
}

/// A [`Read`] counting consumed bytes — the scan uses it to record where a
/// compressed element's data begins in decompressed coordinates.
struct CountingReader<R> {
    inner: R,
    count: u64,
}

impl<R: Read> CountingReader<R> {
    fn new(inner: R) -> Self {
        CountingReader { inner, count: 0 }
    }
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.count += n as u64;
        Ok(n)
    }
}

/// A parsed element tag.
#[derive(Clone, Copy, Debug)]
struct Tag {
    ty: u32,
    nbytes: u32,
    /// True for the 4-byte small-element form (data lives in the tag's
    /// second word; total element size is exactly 8 bytes).
    small: bool,
}

/// Read a sub-element tag from a byte stream.
fn read_tag(r: &mut impl Read, order: ByteOrder, path: &Path) -> Result<Tag, MatError> {
    let mut w0 = [0u8; 4];
    r.read_exact(&mut w0)
        .map_err(|e| MatError::from_read(path, e))?;
    let w0 = order.u32(w0);
    if w0 >> 16 != 0 {
        return Ok(Tag {
            ty: w0 & 0xFFFF,
            nbytes: w0 >> 16,
            small: true,
        });
    }
    let mut w1 = [0u8; 4];
    r.read_exact(&mut w1)
        .map_err(|e| MatError::from_read(path, e))?;
    Ok(Tag {
        ty: w0,
        nbytes: order.u32(w1),
        small: false,
    })
}

/// Padding after a normal element's data so the next tag is 8-aligned.
fn pad_to_8(nbytes: u32) -> u32 {
    (8 - nbytes % 8) % 8
}

/// Read one complete sub-element (tag + data + padding), with a cap on the
/// byte count so corrupt headers cannot drive allocations.
fn read_element(
    r: &mut impl Read,
    order: ByteOrder,
    path: &Path,
    what: &str,
    max_bytes: u32,
) -> Result<(u32, Vec<u8>), MatError> {
    let tag = read_tag(r, order, path)?;
    if tag.nbytes > max_bytes {
        return Err(MatError::element(
            path,
            format!(
                "{what} sub-element claims {} bytes (cap {max_bytes})",
                tag.nbytes
            ),
        ));
    }
    if tag.small {
        let mut region = [0u8; 4];
        r.read_exact(&mut region)
            .map_err(|e| MatError::from_read(path, e))?;
        return Ok((tag.ty, region[..tag.nbytes as usize].to_vec()));
    }
    let mut data = vec![0u8; tag.nbytes as usize];
    r.read_exact(&mut data)
        .map_err(|e| MatError::from_read(path, e))?;
    let mut pad = [0u8; 8];
    let padding = pad_to_8(tag.nbytes) as usize;
    r.read_exact(&mut pad[..padding])
        .map_err(|e| MatError::from_read(path, e))?;
    Ok((tag.ty, data))
}

/// Everything the scan needs from a `miMATRIX` prefix: identity, shape, and
/// where (relative to the reader's start) the numeric data begins.
struct MatrixPrefix {
    class: MatClass,
    complex: bool,
    dims: Vec<usize>,
    name: String,
    /// `(element type, byte count, data offset from matrix-element start)`
    /// for numeric classes; `None` otherwise.
    pr: Option<(u32, u64, u64)>,
}

/// Parse the leading sub-elements of a `miMATRIX`: Array Flags, Dimensions,
/// Array Name, and (for numeric classes) the `pr` tag. Stops *before* the
/// numeric data so multi-GB matrices are never resident.
fn parse_matrix_prefix(
    r: &mut CountingReader<impl Read>,
    order: ByteOrder,
    path: &Path,
) -> Result<MatrixPrefix, MatError> {
    // Array Flags: miUINT32, 8 bytes.
    let (ty, flags) = read_element(r, order, path, "array flags", 8)?;
    if ty != mi::UINT32 || flags.len() != 8 {
        return Err(MatError::element(
            path,
            format!(
                "expected 8-byte miUINT32 array flags, found type {ty} ({} bytes)",
                flags.len()
            ),
        ));
    }
    let word = order.u32([flags[0], flags[1], flags[2], flags[3]]);
    let class = MatClass::from_code((word & 0xFF) as u8);
    let complex = word & 0x0800 != 0;

    // Dimensions: miINT32.
    let (ty, dim_bytes) = read_element(r, order, path, "dimensions", MAX_DIMS_BYTES)?;
    if ty != mi::INT32 || dim_bytes.len() % 4 != 0 || dim_bytes.len() < 8 {
        return Err(MatError::element(
            path,
            format!(
                "expected miINT32 dimensions (>= 2), found type {ty} ({} bytes)",
                dim_bytes.len()
            ),
        ));
    }
    let mut dims = Vec::with_capacity(dim_bytes.len() / 4);
    for chunk in dim_bytes.chunks_exact(4) {
        let d = order.i32([chunk[0], chunk[1], chunk[2], chunk[3]]);
        if d < 0 {
            return Err(MatError::element(path, format!("negative dimension {d}")));
        }
        dims.push(d as usize);
    }

    // Array Name: miINT8 (empty for anonymous arrays, e.g. cell contents).
    let (ty, name_bytes) = read_element(r, order, path, "array name", MAX_NAME_BYTES)?;
    if ty != mi::INT8 {
        return Err(MatError::element(
            path,
            format!("expected miINT8 array name, found type {ty}"),
        ));
    }
    let name = String::from_utf8(name_bytes)
        .map_err(|_| MatError::element(path, "array name is not valid UTF-8"))?;

    // Numeric classes: record where the real-part data begins. Non-numeric
    // classes (cell/char/struct) are skipped by the caller via the outer
    // element length, so their contents are never parsed.
    let pr = if class.is_numeric() {
        let tag = read_tag(r, order, path)?;
        if mi_value_size(tag.ty).is_none() {
            return Err(MatError::element(
                path,
                format!(
                    "numeric array '{name}' stores data as non-numeric type {}",
                    tag.ty
                ),
            ));
        }
        // For a small element the 4-byte data region immediately follows;
        // `r.count` already points at it either way.
        Some((tag.ty, tag.nbytes as u64, r.count))
    } else {
        None
    };

    Ok(MatrixPrefix {
        class,
        complex,
        dims,
        name,
        pr,
    })
}

impl MatFile {
    /// Open and scan a MAT level-5 file.
    ///
    /// Validates the 128-byte header (magic text, endian indicator, version
    /// — v7.3/HDF5 is the typed [`MatError::UnsupportedV73`]), then walks
    /// the top-level element stream recording every variable's name, class,
    /// dims, and data location. Compressed elements have only their prefix
    /// inflated; feature-sized payloads stay on disk.
    pub fn open(path: &Path) -> Result<Self, MatError> {
        let mut file = std::fs::File::open(path).map_err(|e| MatError::io(path, e))?;
        let file_len = file.metadata().map_err(|e| MatError::io(path, e))?.len();

        let mut header = [0u8; HEADER_LEN as usize];
        if file_len < HEADER_LEN {
            return Err(MatError::truncated(
                path,
                format!("{file_len} bytes is shorter than the 128-byte MAT header"),
            ));
        }
        file.read_exact(&mut header)
            .map_err(|e| MatError::from_read(path, e))?;
        if header[..8] == HDF5_MAGIC {
            return Err(MatError::UnsupportedV73 { path: path.into() });
        }
        if header[..4].contains(&0) {
            return Err(MatError::header(
                path,
                "descriptive text starts with a zero byte (a level-4 MAT-file, not level 5)",
            ));
        }
        let order = match (header[126], header[127]) {
            (b'I', b'M') => ByteOrder::Little,
            (b'M', b'I') => ByteOrder::Big,
            (a, b) => {
                return Err(MatError::header(
                    path,
                    format!("unknown endian indicator bytes 0x{a:02x} 0x{b:02x} (expected 'MI')"),
                ));
            }
        };
        let version = order.u16([header[124], header[125]]);
        if version == 0x0200 {
            return Err(MatError::UnsupportedV73 { path: path.into() });
        }
        if version != 0x0100 {
            return Err(MatError::header(
                path,
                format!("unsupported MAT version word {version:#06x} (expected 0x0100)"),
            ));
        }

        let mut vars = Vec::new();
        let mut pos = HEADER_LEN;
        while pos < file_len {
            if file_len - pos < 8 {
                return Err(MatError::truncated(
                    path,
                    format!(
                        "element tag at offset {pos} needs 8 bytes, file ends after {}",
                        file_len - pos
                    ),
                ));
            }
            file.seek(SeekFrom::Start(pos))
                .map_err(|e| MatError::io(path, e))?;
            let tag = read_tag(&mut file, order, path)?;
            let tag_len: u64 = if tag.small { 4 } else { 8 };
            let data_start = pos + tag_len;
            let data_len = if tag.small { 4 } else { tag.nbytes as u64 };
            // Small elements occupy exactly 8 bytes; compressed elements are
            // written unpadded by MATLAB; everything else pads to 8.
            let next = if tag.small {
                pos + 8
            } else if tag.ty == mi::COMPRESSED {
                data_start + data_len
            } else {
                data_start + data_len + pad_to_8(tag.nbytes) as u64
            };
            if data_start + data_len > file_len {
                return Err(MatError::truncated(
                    path,
                    format!(
                        "element at offset {pos} promises {data_len} data bytes but only {} remain",
                        file_len - data_start.min(file_len)
                    ),
                ));
            }
            match tag.ty {
                mi::MATRIX => {
                    let mut counter = CountingReader::new(&mut file);
                    let prefix = parse_matrix_prefix(&mut counter, order, path)?;
                    vars.push(Self::var_from_prefix(
                        prefix,
                        |p| VarLoc::Plain {
                            pr_offset: data_start + p,
                        },
                        path,
                        data_len,
                    )?);
                }
                mi::COMPRESSED => {
                    let sub = (&mut file).take(data_len);
                    let mut decoder = CountingReader::new(ZlibDecoder::new(sub));
                    // The decompressed payload is one complete element; its
                    // tag must be miMATRIX.
                    let inner = read_tag(&mut decoder, order, path)?;
                    if inner.ty != mi::MATRIX {
                        return Err(MatError::element(
                            path,
                            format!(
                                "compressed element at offset {pos} holds type {} (expected miMATRIX)",
                                inner.ty
                            ),
                        ));
                    }
                    let inner_len = if inner.small { 4 } else { inner.nbytes as u64 };
                    let prefix = parse_matrix_prefix(&mut decoder, order, path)?;
                    vars.push(Self::var_from_prefix(
                        prefix,
                        |p| VarLoc::Compressed {
                            comp_offset: data_start,
                            comp_len: data_len,
                            pr_skip: p,
                        },
                        path,
                        inner_len + if inner.small { 4 } else { 8 },
                    )?);
                }
                other => {
                    // Top-level elements other than miMATRIX/miCOMPRESSED do
                    // not occur in practice; skip them by their declared
                    // length rather than failing the whole file.
                    let _ = other;
                }
            }
            pos = next;
        }

        Ok(MatFile {
            path: path.into(),
            order,
            vars,
        })
    }

    /// Build a [`MatVar`] from a parsed prefix, validating that the numeric
    /// data fits inside the element (`elem_len` = total element byte count
    /// including the matrix tag region the prefix offsets are relative to).
    fn var_from_prefix(
        prefix: MatrixPrefix,
        make_loc: impl Fn(u64) -> VarLoc,
        path: &Path,
        elem_len: u64,
    ) -> Result<MatVar, MatError> {
        let (pr_type, pr_bytes, loc) = match prefix.pr {
            Some((ty, bytes, offset)) => {
                if offset + bytes > elem_len {
                    return Err(MatError::truncated(
                        path,
                        format!(
                            "variable '{}' promises {bytes} data bytes at offset {offset} \
                             but its element holds only {elem_len}",
                            prefix.name
                        ),
                    ));
                }
                (ty, bytes, Some(make_loc(offset)))
            }
            None => (0, 0, None),
        };
        Ok(MatVar {
            name: prefix.name,
            class: prefix.class,
            dims: prefix.dims,
            complex: prefix.complex,
            loc,
            pr_type,
            pr_bytes,
        })
    }

    /// Path this file was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The file's byte order.
    pub fn byte_order(&self) -> ByteOrder {
        self.order
    }

    /// All scanned variables, in file order.
    pub fn vars(&self) -> &[MatVar] {
        &self.vars
    }

    /// Find a variable by name.
    pub fn var(&self, name: &str) -> Option<&MatVar> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// Find a variable or fail with the typed missing-variable error.
    pub fn require(&self, name: &str) -> Result<&MatVar, MatError> {
        self.var(name).ok_or_else(|| MatError::MissingVariable {
            path: self.path.clone(),
            name: name.into(),
        })
    }

    /// Check a variable can be read numerically and return its per-value
    /// byte size.
    fn numeric_prelude(&self, var: &MatVar) -> Result<usize, MatError> {
        if !var.class.is_numeric() {
            return Err(MatError::unsupported(
                &self.path,
                format!(
                    "variable '{}' has non-numeric class {:?}",
                    var.name, var.class
                ),
            ));
        }
        if var.complex {
            return Err(MatError::unsupported(
                &self.path,
                format!("variable '{}' is complex", var.name),
            ));
        }
        let vsize = mi_value_size(var.pr_type).expect("validated at scan");
        let expected = var.numel() as u64 * vsize as u64;
        if expected != var.pr_bytes {
            return Err(MatError::element(
                &self.path,
                format!(
                    "variable '{}' dims {:?} need {expected} data bytes but element stores {}",
                    var.name, var.dims, var.pr_bytes
                ),
            ));
        }
        Ok(vsize)
    }

    /// Open a [`Read`] positioned at the first byte of a variable's numeric
    /// data (plain: a seek; compressed: re-inflate and discard the prefix).
    pub(crate) fn value_reader(&self, var: &MatVar) -> Result<ValueSource, MatError> {
        let loc = var.loc.as_ref().ok_or_else(|| {
            MatError::unsupported(
                &self.path,
                format!("variable '{}' has no numeric data", var.name),
            )
        })?;
        let mut file = std::fs::File::open(&self.path).map_err(|e| MatError::io(&self.path, e))?;
        match *loc {
            VarLoc::Plain { pr_offset } => {
                file.seek(SeekFrom::Start(pr_offset))
                    .map_err(|e| MatError::io(&self.path, e))?;
                Ok(ValueSource::Plain(file))
            }
            VarLoc::Compressed {
                comp_offset,
                comp_len,
                pr_skip,
            } => {
                file.seek(SeekFrom::Start(comp_offset))
                    .map_err(|e| MatError::io(&self.path, e))?;
                let mut decoder = ZlibDecoder::new(file.take(comp_len));
                let mut skip = pr_skip;
                let mut scratch = [0u8; 8192];
                while skip > 0 {
                    let take = skip.min(scratch.len() as u64) as usize;
                    decoder
                        .read_exact(&mut scratch[..take])
                        .map_err(|e| MatError::from_read(&self.path, e))?;
                    skip -= take as u64;
                }
                Ok(ValueSource::Inflated(Box::new(decoder)))
            }
        }
    }

    /// Read a numeric variable in full, widening every stored value to
    /// `f64`. For compressed elements the stream is drained to its end so
    /// the Adler-32 trailer is verified — corrupt payloads cannot produce a
    /// silently wrong array.
    pub fn read_numeric(&self, name: &str) -> Result<NumericArray, MatError> {
        let var = self.require(name)?.clone();
        let vsize = self.numeric_prelude(&var)?;
        let mut source = self.value_reader(&var)?;
        let count = var.numel();
        let mut data = Vec::with_capacity(count);
        let mut buf = vec![0u8; (64 * 1024 / vsize.max(1)) * vsize];
        let mut remaining = var.pr_bytes as usize;
        while remaining > 0 {
            let take = remaining.min(buf.len());
            source
                .read_exact(&mut buf[..take])
                .map_err(|e| MatError::from_read(&self.path, e))?;
            for chunk in buf[..take].chunks_exact(vsize) {
                data.push(self.order.widen(var.pr_type, chunk));
            }
            remaining -= take;
        }
        source.drain_and_verify(&self.path)?;
        Ok(NumericArray {
            dims: var.dims,
            data,
        })
    }

    /// Stream a 2-D numeric variable's columns in bounded memory: each
    /// yielded chunk holds up to `chunk_cols` consecutive MATLAB columns as
    /// *rows* of a row-major matrix (column-major `d x N` storage means one
    /// column — one xlsa17 sample — is contiguous, so this is the transpose
    /// the bundle format wants, for free).
    pub fn stream_columns(
        &self,
        name: &str,
        chunk_cols: usize,
    ) -> Result<ColumnChunkReader, MatError> {
        let var = self.require(name)?.clone();
        let vsize = self.numeric_prelude(&var)?;
        if var.dims.len() != 2 {
            return Err(MatError::unsupported(
                &self.path,
                format!(
                    "variable '{}' has {} dimensions; column streaming needs a 2-D matrix",
                    var.name,
                    var.dims.len()
                ),
            ));
        }
        if chunk_cols == 0 {
            return Err(MatError::element(&self.path, "chunk_cols must be positive"));
        }
        let source = self.value_reader(&var)?;
        Ok(ColumnChunkReader::new(
            source,
            self.path.clone(),
            self.order,
            var.pr_type,
            vsize,
            var.dims[0],
            var.dims[1],
            chunk_cols,
        ))
    }
}

/// A positioned reader over a variable's numeric data: either the raw file
/// or a bounded inflate stream.
pub(crate) enum ValueSource {
    /// Seeked raw file.
    Plain(std::fs::File),
    /// Decompressor positioned past the element prefix (boxed: the decoder
    /// carries its 32 KiB window and lookup tables inline).
    Inflated(Box<ZlibDecoder<std::io::Take<std::fs::File>>>),
}

impl Read for ValueSource {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ValueSource::Plain(f) => f.read(buf),
            ValueSource::Inflated(d) => d.read(buf),
        }
    }
}

impl ValueSource {
    /// For compressed sources, consume the remainder of the stream so the
    /// final block and Adler-32 trailer are decoded and checked. Plain
    /// sources have nothing to verify.
    pub(crate) fn drain_and_verify(&mut self, path: &Path) -> Result<(), MatError> {
        if let ValueSource::Inflated(decoder) = self {
            let mut scratch = [0u8; 8192];
            loop {
                match decoder.read(&mut scratch) {
                    Ok(0) => break,
                    Ok(_) => continue,
                    Err(e) => return Err(MatError::from_read(path, e)),
                }
            }
        }
        Ok(())
    }
}
