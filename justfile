# Dev recipes; `make` offers the same targets.

# Tier-1 verify (matches ROADMAP.md).
test:
    cargo build --release && cargo test -q

lint:
    cargo fmt --all -- --check
    cargo clippy --all-targets -- -D warnings

fmt:
    cargo fmt --all

build:
    cargo build --release

# Public-API docs must stay warning-free (CI enforces the same flag).
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

# Regenerate the committed .mat golden fixtures and print digest constants.
import-fixtures:
    cargo test -p zsl-mat --test golden_import -- --ignored --nocapture
