# Tier-1 verify and dev conveniences. `just` mirrors these recipes.

.PHONY: test lint fmt build doc

# Matches the tier-1 verify in ROADMAP.md exactly.
test:
	cargo build --release && cargo test -q

lint:
	cargo fmt --all -- --check
	cargo clippy --all-targets -- -D warnings

fmt:
	cargo fmt --all

build:
	cargo build --release

# Public-API docs must stay warning-free (CI enforces the same flag).
doc:
	RUSTDOCFLAGS="-D warnings" cargo doc --no-deps
