# Tier-1 verify and dev conveniences. `just` mirrors these recipes.

.PHONY: test lint fmt build doc import-fixtures

# Matches the tier-1 verify in ROADMAP.md exactly.
test:
	cargo build --release && cargo test -q

lint:
	cargo fmt --all -- --check
	cargo clippy --all-targets -- -D warnings

fmt:
	cargo fmt --all

build:
	cargo build --release

# Public-API docs must stay warning-free (CI enforces the same flag).
doc:
	RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

# Regenerate the committed .mat golden fixtures under crates/mat/tests/fixtures/
# and print the digest constants to paste into tests/golden_import.rs.
import-fixtures:
	cargo test -p zsl-mat --test golden_import -- --ignored --nocapture
